// Centralized reference algorithms used as test oracles and comparators.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace overlay {

/// Deterministic greedy MIS (ascending id order) — a valid MIS oracle.
std::vector<char> GreedyMis(const Graph& g);

/// Luby's randomized MIS as a CONGEST reference; returns the set and the
/// number of rounds taken.
struct LubyResult {
  std::vector<char> in_mis;
  std::size_t rounds = 0;
};
LubyResult LubyMis(const Graph& g, std::uint64_t seed);

/// Partition refinement check: do two edge-component labelings describe the
/// same partition of edge indices (up to renaming)?
bool SameEdgePartition(const std::vector<std::uint32_t>& a,
                       const std::vector<std::uint32_t>& b);

}  // namespace overlay
