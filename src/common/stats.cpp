#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace overlay {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::min() const { return count_ ? min_ : 0.0; }
double RunningStats::max() const { return count_ ? max_ : 0.0; }
double RunningStats::mean() const { return count_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = new_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t bucket_count)
    : width_(bucket_width), buckets_(bucket_count, 0) {
  OVERLAY_CHECK(bucket_width > 0, "histogram bucket width must be positive");
  OVERLAY_CHECK(bucket_count > 0, "histogram needs at least one bucket");
}

void Histogram::Add(std::uint64_t value) {
  const std::size_t idx = static_cast<std::size_t>(value / width_);
  if (idx < buckets_.size()) {
    ++buckets_[idx];
  } else {
    ++overflow_;
  }
  ++total_;
}

std::uint64_t Histogram::BucketCount(std::size_t i) const {
  OVERLAY_CHECK(i < buckets_.size(), "histogram bucket index out of range");
  return buckets_[i];
}

std::uint64_t Histogram::Quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return (static_cast<std::uint64_t>(i) + 1) * width_ - 1;
    }
  }
  return buckets_.size() * width_;  // in overflow region
}

std::string Histogram::ToString() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    oss << "[" << i * width_ << "," << (i + 1) * width_ << "): " << buckets_[i]
        << "\n";
  }
  if (overflow_ > 0) {
    oss << "[overflow]: " << overflow_ << "\n";
  }
  return oss.str();
}

}  // namespace overlay
