// Running statistics and histograms for simulator telemetry.
//
// The benchmark harness reports per-round message loads, token loads, degree
// distributions, etc.; `RunningStats` accumulates min/max/mean/variance in one
// pass, `Histogram` buckets counts for load distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace overlay {

/// One-pass min/max/mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);

  std::uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStats& other);

 private:
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width integer histogram with overflow bucket.
class Histogram {
 public:
  /// Buckets [0,width), [width,2*width), ...; values >= buckets*width overflow.
  Histogram(std::uint64_t bucket_width, std::size_t bucket_count);

  void Add(std::uint64_t value);
  std::uint64_t BucketCount(std::size_t i) const;
  std::uint64_t OverflowCount() const { return overflow_; }
  std::uint64_t Total() const { return total_; }

  /// Smallest v such that at least `q` fraction of samples are <= v
  /// (bucket upper-bound resolution).
  std::uint64_t Quantile(double q) const;

  std::string ToString() const;

 private:
  std::uint64_t width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace overlay
