// Deterministic, splittable random number generation.
//
// All randomized algorithms in the library draw from `Rng`, a xoshiro256**
// engine seeded via SplitMix64. Unlike std::mt19937 + std::distributions, the
// streams here are bit-reproducible across standard libraries, which keeps
// tests and benchmarks deterministic for a fixed seed. `Split()` derives an
// independent per-node stream, mirroring the paper's assumption that nodes
// randomize independently.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace overlay {

/// SplitMix64 step; used for seeding and stream splitting.
std::uint64_t SplitMix64(std::uint64_t& state);

/// xoshiro256** engine with helpers for the distributions the algorithms need.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t Next();

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli(p) draw; p clamped to [0,1].
  bool NextBool(double p);

  /// Exponential(beta) draw (rate parameter beta > 0), as used by the
  /// Elkin–Neiman spanner construction (Section 4.2, beta = 1/2).
  double NextExponential(double beta);

  /// Derives an independent stream (for per-node randomness).
  Rng Split();

 private:
  std::uint64_t s_[4];
};

}  // namespace overlay
