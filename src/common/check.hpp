// Contract-checking macros (C++ Core Guidelines I.6/I.8 style, testable).
//
// OVERLAY_CHECK fires in all build types and throws ContractViolation so tests
// can assert on misuse instead of hitting UB. Use for preconditions on public
// APIs and for simulator-model invariants (e.g. message caps).
#pragma once

#include <stdexcept>
#include <string>

namespace overlay {

/// Thrown when a precondition or invariant documented on a public API fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void RaiseContractViolation(const char* expr, const char* file, int line,
                                         const std::string& detail);

}  // namespace overlay

#define OVERLAY_CHECK(expr, detail)                                          \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::overlay::RaiseContractViolation(#expr, __FILE__, __LINE__, (detail)); \
    }                                                                        \
  } while (false)
