// Small integer-math helpers used throughout (log2, powers, divisions).
#pragma once

#include <bit>
#include <cstdint>

#include "common/check.hpp"

namespace overlay {

/// floor(log2(x)) for x >= 1.
inline std::uint32_t FloorLog2(std::uint64_t x) {
  OVERLAY_CHECK(x >= 1, "FloorLog2 requires x >= 1");
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

/// ceil(log2(x)) for x >= 1 (0 for x == 1).
inline std::uint32_t CeilLog2(std::uint64_t x) {
  OVERLAY_CHECK(x >= 1, "CeilLog2 requires x >= 1");
  return (x == 1) ? 0u : FloorLog2(x - 1) + 1u;
}

/// The paper's L >= log n upper bound: ceil(log2(n)), at least 1.
inline std::uint32_t LogUpperBound(std::uint64_t n) {
  const std::uint32_t l = CeilLog2(n < 2 ? 2 : n);
  return l == 0 ? 1u : l;
}

/// ceil(a / b) for b > 0.
inline std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  OVERLAY_CHECK(b > 0, "CeilDiv requires b > 0");
  return (a + b - 1) / b;
}

/// Rounds x up to the next even value.
inline std::uint64_t RoundUpEven(std::uint64_t x) { return x + (x & 1); }

/// True iff x is a power of two (x >= 1).
inline bool IsPowerOfTwo(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace overlay
