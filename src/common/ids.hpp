// Node identifier types shared by every layer of the library.
//
// The paper assumes each node has a unique O(log n)-bit identifier; edges in the
// knowledge graph G = (V, E) exist exactly when one node stores another's id.
// We model identifiers as dense 32-bit indices (the simulator owns the id space)
// plus an `kInvalidNode` sentinel for "no node".
#pragma once

#include <cstdint>
#include <limits>

namespace overlay {

/// Dense node identifier. Simulated networks index nodes 0..n-1; algorithms must
/// only rely on *comparability* and *equality* of ids (as the paper does), never
/// on density — tests cover id-permutation invariance.
using NodeId = std::uint32_t;

/// Sentinel meaning "no node" (e.g. parent of a root).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Edge endpoint pair in a directed knowledge graph: `from` stores `to`'s id.
struct Arc {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  friend bool operator==(const Arc&, const Arc&) = default;
};

}  // namespace overlay
