#include "common/check.hpp"

#include <sstream>

namespace overlay {

void RaiseContractViolation(const char* expr, const char* file, int line,
                            const std::string& detail) {
  std::ostringstream oss;
  oss << "contract violation: (" << expr << ") at " << file << ":" << line;
  if (!detail.empty()) {
    oss << " — " << detail;
  }
  throw ContractViolation(oss.str());
}

}  // namespace overlay
