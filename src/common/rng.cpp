#include "common/rng.hpp"

#include <cmath>

namespace overlay {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  OVERLAY_CHECK(bound > 0, "NextBelow requires a positive bound");
  // Lemire-style rejection sampling: unbiased and fast for small bounds.
  std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  OVERLAY_CHECK(lo <= hi, "NextInRange requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(Next());
  }
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) with full double resolution.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double beta) {
  OVERLAY_CHECK(beta > 0.0, "exponential rate must be positive");
  // Inverse CDF; guard against log(0).
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log(1.0 - u) / beta;
}

Rng Rng::Split() {
  return Rng(Next() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace overlay
