// Locality-aware shard relabeling (METIS-style min-edge-cut coarsening).
//
// The sharded engine partitions nodes into S *contiguous* id blocks
// (ShardedNetwork::ShardOf), so cross-shard traffic is whatever the node
// numbering dictates: a community-heavy graph whose communities are scattered
// across the id space pays the staging hop for almost every edge. This module
// computes a deterministic, seed-keyed bijective renumbering that packs
// densely connected node clusters into the same contiguous block, so most
// edges — and therefore most protocol messages, which travel along edges —
// become shard-local and skip the staging hop entirely.
//
// The pass is greedy label-propagation coarsening with a cluster-size cap,
// followed by a deterministic bin-pack of the clusters into the *exact* block
// sizes the engine uses (first n % S blocks get one extra node). That makes
// the balance trivially tight, and the METIS partition invariants — blocks
// cover every node exactly once, never intersect, balance factor <= 1.05 —
// are still enforced by OVERLAY_CHECK on every result rather than assumed.
//
// Contract (the ExecPolicy::relabel opt-in builds on this):
//   * RelabelFor(g, S, seed) is a pure function of (edge multiset, S, seed):
//     bit-identical across runs, machines, and shard pools.
//   * new_of_old/old_of_new are inverse bijections over [0, n).
//   * The minimum old id keeps new id 0, so min-id root elections elect the
//     same physical node in both id spaces.
//   * Relabeling changes *where* messages travel, never what a protocol
//     computes: id-invariant outputs (BFS depths, component structure,
//     survivor masks) mapped back through `old_of_new` are bit-identical to
//     the unrelabeled run. Arrival-order-dependent outputs (e.g. which valid
//     BFS parent a flood picks) may differ but stay valid.
//   * S <= 1, n <= 1, or S > n clamp exactly like ExecPolicy::ShardsFor, so
//     the relabeling's block map always agrees with the engine's shard map.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace overlay {

/// A bijective renumbering of [0, n) keyed to an S-block contiguous
/// partition. `new_of_old[v]` is node v's new id; `old_of_new` is the
/// inverse. Produced by RelabelFor (validated) or IdentityRelabeling.
struct Relabeling {
  std::vector<NodeId> new_of_old;
  std::vector<NodeId> old_of_new;
  /// Effective block count (ShardsFor-clamped: >= 1, <= max(n, 1)).
  std::size_t num_shards = 1;

  std::size_t num_nodes() const { return new_of_old.size(); }

  /// True iff the renumbering is the identity (S = 1 and tiny graphs).
  bool IsIdentity() const;
};

/// Edge-cut accounting of the contiguous S-block partition over a graph's
/// *current* ids — measure before and after ApplyRelabeling to see the win.
struct PartitionStats {
  std::size_t local_edges = 0;  ///< both endpoints in one block
  std::size_t cut_edges = 0;    ///< endpoints in different blocks
  /// max block size / mean block size (1.0 = perfectly balanced).
  double balance = 1.0;
  std::size_t num_blocks = 1;

  double LocalFraction() const {
    const std::size_t m = local_edges + cut_edges;
    return m == 0 ? 1.0 : static_cast<double>(local_edges) / m;
  }
};

/// Block owning node `v` under the engine's contiguous split of `n` nodes
/// into `num_shards` blocks — the standalone twin of ShardedNetwork::ShardOf
/// (same ShardsFor clamp, same first-rem-blocks-get-one-extra layout).
std::size_t ContiguousShardOf(NodeId v, std::size_t n, std::size_t num_shards);

/// First node id of block `s` under the same split.
NodeId ContiguousShardBase(std::size_t s, std::size_t n,
                           std::size_t num_shards);

/// The identity relabeling over `n` nodes (what RelabelFor returns when the
/// clamp leaves a single block).
Relabeling IdentityRelabeling(std::size_t n, std::size_t num_shards);

/// Computes the locality-aware renumbering of `g` for `num_shards` blocks.
/// Deterministic and seed-keyed: label-propagation ties break through a
/// SplitMix64 hash of (seed, label), so a fixed (graph, S, seed) triple
/// always yields the same bijection. The result satisfies the invariants in
/// the header comment (enforced by OVERLAY_CHECK before returning).
Relabeling RelabelFor(const Graph& g, std::size_t num_shards,
                      std::uint64_t seed = 1);

/// `g` with node ids renamed through `r` (new graph; `r.num_nodes()` must
/// match). Edge {u, v} becomes {new_of_old[u], new_of_old[v]}.
Graph ApplyRelabeling(const Graph& g, const Relabeling& r);

/// Cut/local edge counts of the contiguous `num_shards`-block partition of
/// `g`'s current ids (no relabeling applied — measure g and
/// ApplyRelabeling(g, r) to quantify the improvement).
PartitionStats MeasurePartition(const Graph& g, std::size_t num_shards);

/// Maps an id-valued per-node vector computed in the relabeled space back to
/// the original space: result[v] = old_of_new[by_new[new_of_old[v]]], with
/// kInvalidNode passing through untranslated (e.g. a BFS parent vector).
std::vector<NodeId> MapIdsBack(const Relabeling& r,
                               std::span<const NodeId> by_new);

/// Maps a plain per-node value vector computed in the relabeled space back:
/// result[v] = by_new[new_of_old[v]] (e.g. depths, alive masks).
template <typename T>
std::vector<T> MapValuesBack(const Relabeling& r, std::span<const T> by_new) {
  std::vector<T> by_old(by_new.size());
  for (std::size_t v = 0; v < by_new.size(); ++v) {
    by_old[v] = by_new[r.new_of_old[v]];
  }
  return by_old;
}

}  // namespace overlay
