#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/check.hpp"
#include "graph/metrics.hpp"

namespace overlay {
namespace gen {

Graph Line(std::size_t n) {
  OVERLAY_CHECK(n >= 1, "line needs at least one node");
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    b.AddEdge(v, v + 1);
  }
  return std::move(b).Build();
}

Graph Cycle(std::size_t n) {
  OVERLAY_CHECK(n >= 3, "cycle needs at least three nodes");
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    b.AddEdge(v, static_cast<NodeId>((v + 1) % n));
  }
  return std::move(b).Build();
}

Graph Star(std::size_t n) {
  OVERLAY_CHECK(n >= 2, "star needs at least two nodes");
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) {
    b.AddEdge(0, v);
  }
  return std::move(b).Build();
}

Graph Complete(std::size_t n) {
  OVERLAY_CHECK(n >= 2, "complete graph needs at least two nodes");
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      b.AddEdge(u, v);
    }
  }
  return std::move(b).Build();
}

Graph BinaryTree(std::size_t n) {
  OVERLAY_CHECK(n >= 1, "tree needs at least one node");
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) {
    b.AddEdge(v, (v - 1) / 2);
  }
  return std::move(b).Build();
}

Graph RandomTree(std::size_t n, std::uint64_t seed) {
  OVERLAY_CHECK(n >= 1, "tree needs at least one node");
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) {
    b.AddEdge(v, static_cast<NodeId>(rng.NextBelow(v)));
  }
  return std::move(b).Build();
}

Graph Grid(std::size_t rows, std::size_t cols) {
  OVERLAY_CHECK(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  GraphBuilder b(rows * cols);
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.AddEdge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) b.AddEdge(at(r, c), at(r + 1, c));
    }
  }
  return std::move(b).Build();
}

Graph Torus(std::size_t rows, std::size_t cols) {
  OVERLAY_CHECK(rows >= 3 && cols >= 3, "torus needs dimensions >= 3");
  GraphBuilder b(rows * cols);
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      b.AddEdge(at(r, c), at(r, (c + 1) % cols));
      b.AddEdge(at(r, c), at((r + 1) % rows, c));
    }
  }
  return std::move(b).Build();
}

Graph Hypercube(std::uint32_t dim) {
  OVERLAY_CHECK(dim >= 1 && dim <= 24, "hypercube dimension out of range");
  const std::size_t n = std::size_t{1} << dim;
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t bit = 0; bit < dim; ++bit) {
      const NodeId w = v ^ (NodeId{1} << bit);
      if (v < w) b.AddEdge(v, w);
    }
  }
  return std::move(b).Build();
}

Graph RandomRegular(std::size_t n, std::size_t d, std::uint64_t seed) {
  OVERLAY_CHECK(n >= 2 && d >= 1 && d < n, "invalid regular graph parameters");
  OVERLAY_CHECK((n * d) % 2 == 0, "n*d must be even");
  Rng rng(seed);
  // Steger–Wormald pairing: repeatedly match two random remaining stubs,
  // rejecting loops and parallel edges locally; restart only when the
  // remaining stubs admit no valid pair. Far higher success rate than the
  // restart-on-first-collision configuration model for d >= 4.
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(n * d);
    for (NodeId v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    std::set<std::pair<NodeId, NodeId>> seen;
    bool stuck = false;
    while (!stubs.empty() && !stuck) {
      bool paired = false;
      for (int tries = 0; tries < 200; ++tries) {
        const std::size_t i = rng.NextBelow(stubs.size());
        std::size_t j = rng.NextBelow(stubs.size() - 1);
        if (j >= i) ++j;
        NodeId u = stubs[i], v = stubs[j];
        if (u == v) continue;
        if (u > v) std::swap(u, v);
        if (seen.count({u, v})) continue;
        seen.emplace(u, v);
        // Remove both stubs (higher index first).
        const std::size_t hi = std::max(i, j), lo = std::min(i, j);
        stubs[hi] = stubs.back();
        stubs.pop_back();
        stubs[lo] = stubs.back();
        stubs.pop_back();
        paired = true;
        break;
      }
      stuck = !paired;
    }
    if (stuck) continue;
    GraphBuilder b(n);
    for (const auto& [u, v] : seen) b.AddEdge(u, v);
    return std::move(b).Build();
  }
  OVERLAY_CHECK(false, "configuration model failed; d too large for n");
  return Graph{};  // unreachable
}

Graph ConnectedRandomRegular(std::size_t n, std::size_t d, std::uint64_t seed) {
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    Graph g = RandomRegular(n, d, seed + attempt * 0x9e37ULL);
    if (IsConnected(g)) return g;
  }
  OVERLAY_CHECK(false, "could not generate a connected random regular graph");
  return Graph{};  // unreachable
}

Graph Gnp(std::size_t n, double p, std::uint64_t seed) {
  OVERLAY_CHECK(n >= 1, "gnp needs at least one node");
  OVERLAY_CHECK(p >= 0.0 && p <= 1.0, "probability out of range");
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.NextBool(p)) b.AddEdge(u, v);
    }
  }
  return std::move(b).Build();
}

Graph ConnectedGnp(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  // Random attachment tree guarantees connectivity without reshaping G(n,p)
  // much for p above the connectivity threshold.
  for (NodeId v = 1; v < n; ++v) {
    b.AddEdge(v, static_cast<NodeId>(rng.NextBelow(v)));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.NextBool(p)) b.AddEdge(u, v);
    }
  }
  return std::move(b).Build();
}

Graph Barbell(std::size_t k, std::size_t path_len) {
  OVERLAY_CHECK(k >= 2, "barbell cliques need k >= 2");
  const std::size_t n = 2 * k + path_len;
  GraphBuilder b(n);
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) b.AddEdge(u, v);
  }
  const NodeId right = static_cast<NodeId>(k + path_len);
  for (std::size_t u = 0; u < k; ++u) {
    for (std::size_t v = u + 1; v < k; ++v) {
      b.AddEdge(static_cast<NodeId>(right + u), static_cast<NodeId>(right + v));
    }
  }
  // Path bridging clique exits; with path_len == 0 the cliques touch directly.
  NodeId prev = k - 1;
  for (std::size_t i = 0; i < path_len; ++i) {
    const NodeId mid = static_cast<NodeId>(k + i);
    b.AddEdge(prev, mid);
    prev = mid;
  }
  b.AddEdge(prev, right);
  return std::move(b).Build();
}

Graph Lollipop(std::size_t k, std::size_t tail) {
  OVERLAY_CHECK(k >= 2, "lollipop clique needs k >= 2");
  GraphBuilder b(k + tail);
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) b.AddEdge(u, v);
  }
  NodeId prev = k - 1;
  for (std::size_t i = 0; i < tail; ++i) {
    const NodeId next = static_cast<NodeId>(k + i);
    b.AddEdge(prev, next);
    prev = next;
  }
  return std::move(b).Build();
}

Graph Caterpillar(std::size_t spine, std::size_t legs) {
  OVERLAY_CHECK(spine >= 1, "caterpillar needs a spine");
  GraphBuilder b(spine * (1 + legs));
  for (NodeId s = 0; s + 1 < spine; ++s) b.AddEdge(s, s + 1);
  NodeId next = static_cast<NodeId>(spine);
  for (NodeId s = 0; s < spine; ++s) {
    for (std::size_t l = 0; l < legs; ++l) b.AddEdge(s, next++);
  }
  return std::move(b).Build();
}

Graph WattsStrogatz(std::size_t n, std::size_t k, double beta,
                    std::uint64_t seed) {
  OVERLAY_CHECK(k >= 2 && k % 2 == 0 && k < n, "k must be even and < n");
  Rng rng(seed);
  std::set<std::pair<NodeId, NodeId>> edges;
  const auto norm = [](NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  };
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      edges.insert(norm(v, static_cast<NodeId>((v + j) % n)));
    }
  }
  std::vector<std::pair<NodeId, NodeId>> list(edges.begin(), edges.end());
  for (auto& [u, v] : list) {
    if (!rng.NextBool(beta)) continue;
    // Rewire v-end to a uniform non-neighbor.
    for (int tries = 0; tries < 32; ++tries) {
      const NodeId w = static_cast<NodeId>(rng.NextBelow(n));
      if (w == u || w == v) continue;
      const auto cand = norm(u, w);
      if (edges.count(cand)) continue;
      edges.erase(norm(u, v));
      edges.insert(cand);
      v = w;
      break;
    }
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.AddEdge(u, v);
  return std::move(b).Build();
}

Graph DisjointUnion(const std::vector<Graph>& parts) {
  std::size_t total = 0;
  for (const Graph& g : parts) total += g.num_nodes();
  GraphBuilder b(total);
  NodeId offset = 0;
  for (const Graph& g : parts) {
    for (const auto& [u, v] : g.EdgeList()) {
      b.AddEdge(offset + u, offset + v);
    }
    offset += static_cast<NodeId>(g.num_nodes());
  }
  return std::move(b).Build();
}

Digraph RandomKnowledgeGraph(std::size_t n, std::size_t out_deg,
                             std::uint64_t seed) {
  OVERLAY_CHECK(n >= 1 && out_deg >= 1, "invalid knowledge graph parameters");
  Rng rng(seed);
  DigraphBuilder b(n);
  // Every joiner v >= 1 knows one earlier node: weak connectivity.
  for (NodeId v = 1; v < n; ++v) {
    b.AddArc(v, static_cast<NodeId>(rng.NextBelow(v)));
    for (std::size_t j = 1; j < out_deg; ++j) {
      const NodeId w = static_cast<NodeId>(rng.NextBelow(n));
      if (w != v) b.AddArc(v, w);
    }
  }
  return std::move(b).Build();
}

Digraph DirectedLine(std::size_t n) {
  OVERLAY_CHECK(n >= 1, "line needs at least one node");
  DigraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.AddArc(v, v + 1);
  return std::move(b).Build();
}

}  // namespace gen
}  // namespace overlay
