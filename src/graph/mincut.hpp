// Global minimum cut: exact Stoer–Wagner plus a Karger contraction sampler.
//
// Definition 2.1's third property demands every cut of a benign graph carry at
// least Λ edges (counting multiplicity). Tests verify it exactly with
// Stoer–Wagner on small instances; benchmarks sample random contractions on
// larger ones (each sample is an upper-bound witness; agreement with Λ over
// many samples is strong evidence the invariant held).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/multigraph.hpp"

namespace overlay {

/// Exact global min cut weight (Stoer–Wagner, O(n³)). Counts edge
/// multiplicities; self-loops never cross a cut. Requires a connected graph
/// with n >= 2. Practical up to n ≈ 400.
std::uint64_t StoerWagnerMinCut(const Multigraph& g);

/// Unit-weight overload for simple graphs.
std::uint64_t StoerWagnerMinCut(const Graph& g);

/// A global min cut together with one of its sides — the witness the
/// adversary's cut-targeted strike wants: side[v] != 0 marks the smaller (or
/// equal) side of an optimal partition.
struct MinCutSideResult {
  std::uint64_t weight = 0;
  std::vector<char> side;
};

/// Exact min cut with the achieving partition (Stoer–Wagner tracking merged
/// supernode contents). Same preconditions and O(n³) budget as
/// StoerWagnerMinCut; `side` is normalized to the side with fewer nodes
/// (ties keep the phase's last-vertex group).
MinCutSideResult StoerWagnerMinCutSide(const Graph& g);

/// Best (smallest) cut weight found over `trials` random contraction runs —
/// an upper bound on the min cut that matches it w.h.p. for enough trials.
std::uint64_t KargerMinCutSample(const Multigraph& g, std::size_t trials,
                                 std::uint64_t seed);

}  // namespace overlay
