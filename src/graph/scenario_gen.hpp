// Shard-local streaming scenario generators (the KaGen-style catalogue).
//
// Every million-node scenario bench used to run on one topology — the
// ring+chords overlay of bench/scenario_workload.hpp — so the O(log n)
// round claims and the strike strategies were never stressed on graphs
// where they could actually fail (power-law hubs, geometric cuts, grid
// diameters). This module is the catalogue that fixes that: GNM, GNP,
// RGG-2D, 2D grid/torus, Barabási–Albert, and ring+chords, all built the
// same way —
//
//   * streaming: shard s generates only the edges of its contiguous block
//     of the stream domain (node ids for the node-driven generators, edge
//     ids for GNM) into its own buffer, so a 100M-node scenario never
//     materializes a global edge list on one thread. Peak per-shard buffer
//     length is O(m/S + n) and is reported as `peak_shard_edges`.
//   * shard-count-invariant: every emission is a pure function of
//     (seed, stream index) — per-node hash-seeded RNG streams, a seed-keyed
//     Feistel permutation for GNM, position-keyed resolution for BA — never
//     of the shard layout. The generated edge multiset (and therefore the
//     built Graph) is bit-identical for every S; the differential harness
//     enforces it at S ∈ {1, 2, 4, 8}.
//   * honest about dedup: GraphBuilder silently drops duplicate emissions
//     (e.g. a ring+chords chord that lands on w == v+1 duplicates a ring
//     edge), so the catalogue counts emissions, skipped self-loops, and
//     builder dedupes, and reports the realized edge count — benches report
//     the true m, not the requested one.
//
// Follow-ups recorded in ROADMAP.md: hyperbolic and Kronecker generators.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"
#include "sim/engine.hpp"

namespace overlay {

namespace gen {

enum class Topology {
  kRingChords,      ///< ring + hash-picked chords (the historical overlay)
  kGnm,             ///< uniform random graph with exactly m distinct edges
  kGnp,             ///< Erdős–Rényi G(n, p), geometric-skip streamed
  kRgg2d,           ///< random geometric graph in the unit square
  kGrid2d,          ///< rows x cols grid (diameter Θ(√n))
  kTorus2d,         ///< rows x cols torus (degree-regular grid)
  kBarabasiAlbert,  ///< preferential attachment, power-law hubs
};

/// Stable lowercase name ("ring", "gnm", "gnp", "rgg", "grid", "torus",
/// "ba") — bench table keys and --topology CLI values.
const char* TopologyName(Topology t);

/// Parses a TopologyName string; returns false on an unknown name.
bool ParseTopology(std::string_view name, Topology* out);

struct ScenarioSpec {
  Topology topology = Topology::kRingChords;
  /// Node count. Grid/torus: ignored when rows/cols are set explicitly
  /// (the node count is rows*cols); otherwise the side is ⌊√n⌋.
  std::size_t n = 0;
  std::uint64_t seed = 1;
  /// kGnm: exact number of distinct edges (must be <= n(n-1)/2).
  std::size_t edges = 0;
  /// kGnp: independent edge probability.
  double p = 0.0;
  /// kRgg2d: connection radius; 0 picks √(2 ln n / (π n)) — expected
  /// degree ≈ 2 ln n, above the connectivity threshold w.h.p.
  double radius = 0.0;
  /// kGrid2d/kTorus2d: explicit dimensions (both or neither).
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// kBarabasiAlbert: attachment edges per node; kRingChords: chords/node.
  std::size_t degree = 3;
};

/// Generation accounting. Everything except `peak_shard_edges` is a pure
/// function of the spec — shard-count-invariant, part of the differential
/// harness checksum; `peak_shard_edges` depends on S by construction (it is
/// the memory bound) and is excluded from equivalence checks.
struct ScenarioGenStats {
  /// Self-loop-free emissions streamed into the builder (>= realized).
  std::size_t edges_emitted = 0;
  /// Draws that landed on the emitting node itself and were skipped.
  std::size_t self_loops_skipped = 0;
  /// Emissions the builder deduplicated: edges_emitted - realized_edges.
  std::size_t duplicate_edges = 0;
  /// Distinct edges in the built graph (== graph.num_edges()): the true m.
  std::size_t realized_edges = 0;
  /// Max per-shard stream buffer length — the streaming-memory guarantee:
  /// O(m/S + n/S) entries, asserted at S=8 by scenario_gen_test.
  std::size_t peak_shard_edges = 0;
};

struct ScenarioGraph {
  Graph graph;
  ScenarioGenStats stats;
};

/// Node count the spec resolves to (grid/torus dimension handling).
std::size_t ScenarioNumNodes(const ScenarioSpec& spec);

/// The RGG-2D point of node v: a pure function of (seed, v), so any shard
/// (or test) can recompute any node's position in O(1).
std::pair<double, double> Rgg2dPosition(std::uint64_t seed, NodeId v);

/// Builds the spec's graph with `exec.num_shards` streaming builder shards
/// on `exec`'s pool (sim/engine.hpp). The edge multiset — and with it the
/// built Graph and every stat except peak_shard_edges — is bit-identical
/// for every shard count.
ScenarioGraph BuildScenario(const ScenarioSpec& spec,
                            const ExecPolicy& exec = {});

/// The sweep default for one topology at size n: densities chosen so every
/// entry is comparable (m within a small factor of ring+3-chords) and
/// connected or near-connected (components are measured and reported, not
/// assumed away).
ScenarioSpec SpecForTopology(Topology t, std::size_t n, std::uint64_t seed);

/// One named catalogue entry per topology, in sweep order.
struct CatalogueEntry {
  const char* name;
  ScenarioSpec spec;
};
std::vector<CatalogueEntry> DefaultCatalogue(std::size_t n,
                                             std::uint64_t seed);

}  // namespace gen
}  // namespace overlay
