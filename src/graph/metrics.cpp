#include "graph/metrics.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.hpp"

namespace overlay {

std::vector<std::uint32_t> BfsDistances(const Graph& g, NodeId source) {
  OVERLAY_CHECK(source < g.num_nodes(), "source out of range");
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId w : g.Neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

std::uint32_t Eccentricity(const Graph& g, NodeId source) {
  const auto dist = BfsDistances(g, source);
  std::uint32_t ecc = 0;
  for (const std::uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t ExactDiameter(const Graph& g) {
  if (g.num_nodes() <= 1) return 0;
  OVERLAY_CHECK(IsConnected(g), "exact diameter requires a connected graph");
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    best = std::max(best, Eccentricity(g, v));
  }
  return best;
}

std::uint32_t ApproxDiameter(const Graph& g, std::uint32_t sweeps) {
  if (g.num_nodes() <= 1) return 0;
  NodeId probe = 0;
  std::uint32_t best = 0;
  for (std::uint32_t s = 0; s < sweeps; ++s) {
    const auto dist = BfsDistances(g, probe);
    NodeId farthest = probe;
    std::uint32_t ecc = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] != kUnreachable && dist[v] >= ecc) {
        ecc = dist[v];
        farthest = v;
      }
    }
    best = std::max(best, ecc);
    probe = farthest;
  }
  return best;
}

bool IsConnected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  const auto dist = BfsDistances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

bool IsWeaklyConnected(const Digraph& g) { return IsConnected(g.Undirected()); }

std::vector<std::uint32_t> ConnectedComponentLabels(const Graph& g) {
  std::vector<std::uint32_t> label(g.num_nodes(), kUnreachable);
  std::uint32_t next = 0;
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (label[start] != kUnreachable) continue;
    label[start] = next;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId w : g.Neighbors(v)) {
        if (label[w] == kUnreachable) {
          label[w] = next;
          frontier.push(w);
        }
      }
    }
    ++next;
  }
  return label;
}

std::uint64_t CutEdgeCount(const Graph& g, const std::vector<char>& side) {
  OVERLAY_CHECK(side.size() == g.num_nodes(), "side mask size mismatch");
  std::uint64_t crossing = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!side[v]) continue;
    for (const NodeId w : g.Neighbors(v)) crossing += side[w] == 0;
  }
  return crossing;
}

double CutConductance(const Graph& g, const std::vector<char>& side) {
  OVERLAY_CHECK(side.size() == g.num_nodes(), "side mask size mismatch");
  std::uint64_t vol_in = 0, vol_out = 0, crossing = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::uint64_t deg = g.Degree(v);
    if (side[v]) {
      vol_in += deg;
      for (const NodeId w : g.Neighbors(v)) crossing += side[w] == 0;
    } else {
      vol_out += deg;
    }
  }
  const std::uint64_t denom = std::min(vol_in, vol_out);
  if (denom == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(crossing) / static_cast<double>(denom);
}

std::vector<NodeId> CutBoundaryNodes(const Graph& g,
                                     const std::vector<char>& side) {
  OVERLAY_CHECK(side.size() == g.num_nodes(), "side mask size mismatch");
  std::vector<NodeId> boundary;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!side[v]) continue;
    for (const NodeId w : g.Neighbors(v)) {
      if (!side[w]) {
        boundary.push_back(v);
        break;
      }
    }
  }
  return boundary;
}

std::vector<std::size_t> ComponentSizes(
    const std::vector<std::uint32_t>& labels) {
  std::size_t count = 0;
  for (const std::uint32_t l : labels) {
    count = std::max<std::size_t>(count, l + 1);
  }
  std::vector<std::size_t> sizes(count, 0);
  for (const std::uint32_t l : labels) ++sizes[l];
  return sizes;
}

}  // namespace overlay
