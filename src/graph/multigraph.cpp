#include "graph/multigraph.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/graph.hpp"

namespace overlay {

std::size_t Multigraph::Degree(NodeId v) const {
  OVERLAY_CHECK(v < num_nodes(), "node out of range");
  return slots_[v].size();
}

std::span<const NodeId> Multigraph::Slots(NodeId v) const {
  OVERLAY_CHECK(v < num_nodes(), "node out of range");
  return slots_[v];
}

std::size_t Multigraph::SelfLoopCount(NodeId v) const {
  OVERLAY_CHECK(v < num_nodes(), "node out of range");
  return static_cast<std::size_t>(
      std::count(slots_[v].begin(), slots_[v].end(), v));
}

void Multigraph::AddEdge(NodeId u, NodeId v) {
  OVERLAY_CHECK(u < num_nodes() && v < num_nodes(), "edge endpoint out of range");
  OVERLAY_CHECK(u != v, "use AddSelfLoop for self-loops");
  slots_[u].push_back(v);
  slots_[v].push_back(u);
}

void Multigraph::AddSelfLoop(NodeId v) {
  OVERLAY_CHECK(v < num_nodes(), "node out of range");
  slots_[v].push_back(v);
}

NodeId Multigraph::RandomNeighbor(NodeId v, Rng& rng) const {
  OVERLAY_CHECK(v < num_nodes(), "node out of range");
  OVERLAY_CHECK(!slots_[v].empty(), "random step from isolated node");
  return slots_[v][rng.NextBelow(slots_[v].size())];
}

bool Multigraph::IsRegular(std::size_t delta) const {
  return std::all_of(slots_.begin(), slots_.end(),
                     [delta](const auto& s) { return s.size() == delta; });
}

bool Multigraph::IsLazy(std::size_t min_loops) const {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (SelfLoopCount(v) < min_loops) return false;
  }
  return true;
}

std::size_t Multigraph::CutWeight(const std::vector<char>& in_set) const {
  OVERLAY_CHECK(in_set.size() == num_nodes(), "cut indicator size mismatch");
  std::size_t crossing = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (!in_set[v]) continue;
    for (NodeId w : slots_[v]) {
      if (w != v && !in_set[w]) ++crossing;
    }
  }
  return crossing;
}

double Multigraph::ConductanceOf(const std::vector<char>& in_set,
                                 std::size_t delta) const {
  const auto size =
      static_cast<std::size_t>(std::count(in_set.begin(), in_set.end(), 1));
  OVERLAY_CHECK(size > 0 && size * 2 <= num_nodes(),
                "conductance requires 0 < |S| <= n/2");
  OVERLAY_CHECK(delta > 0, "delta must be positive");
  return static_cast<double>(CutWeight(in_set)) /
         (static_cast<double>(delta) * static_cast<double>(size));
}

Graph Multigraph::ToSimpleGraph() const {
  GraphBuilder builder(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (NodeId w : slots_[v]) {
      if (v < w) builder.AddEdge(v, w);
    }
  }
  return std::move(builder).Build();
}

std::map<std::pair<NodeId, NodeId>, std::uint64_t> Multigraph::WeightedEdges()
    const {
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> weights;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (NodeId w : slots_[v]) {
      if (v < w) ++weights[{v, w}];
    }
  }
  return weights;
}

std::uint64_t Multigraph::TotalEdgeMultiplicity() const {
  std::uint64_t total = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (NodeId w : slots_[v]) {
      if (w != v) ++total;
    }
  }
  return total / 2;
}

}  // namespace overlay
