// Graph measurements: distances, diameter, connectivity, components.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace overlay {

/// Marks unreachable nodes in distance vectors.
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;

/// BFS hop distances from `source` (kUnreachable where disconnected).
std::vector<std::uint32_t> BfsDistances(const Graph& g, NodeId source);

/// Max finite distance from `source` (the node's eccentricity).
std::uint32_t Eccentricity(const Graph& g, NodeId source);

/// Exact diameter via all-sources BFS. O(n·m): use for n <= a few thousand.
/// Returns 0 for empty/singleton graphs; requires a connected graph otherwise.
std::uint32_t ExactDiameter(const Graph& g);

/// Diameter lower bound by `sweeps` rounds of double-sweep BFS (each sweep:
/// BFS from the farthest node found so far). Cheap and usually tight on the
/// graph families used here.
std::uint32_t ApproxDiameter(const Graph& g, std::uint32_t sweeps = 4);

/// True iff g is connected (n <= 1 counts as connected).
bool IsConnected(const Graph& g);

/// True iff the *undirected version* of g is connected — the paper's weak
/// connectivity.
bool IsWeaklyConnected(const Digraph& g);

/// Component label per node (labels are 0..k-1 in first-seen order).
std::vector<std::uint32_t> ConnectedComponentLabels(const Graph& g);

/// Sizes indexed by component label.
std::vector<std::size_t> ComponentSizes(const std::vector<std::uint32_t>& labels);

/// Number of edges crossing the node partition (side[v] != 0 vs == 0).
/// `side.size()` must equal g.num_nodes().
std::uint64_t CutEdgeCount(const Graph& g, const std::vector<char>& side);

/// Definition-1.7-style conductance of the partition: crossing edges over
/// min(vol(S), vol(V\S)) with vol = summed degrees. Returns +inf when either
/// side has zero volume (no cut to speak of) — callers minimizing over
/// candidate cuts can compare without special cases.
double CutConductance(const Graph& g, const std::vector<char>& side);

/// Inner boundary of the marked side: nodes with side[v] != 0 that have at
/// least one neighbor outside, ascending. Killing them removes every
/// crossing edge — the cut-targeted strike's victim set.
std::vector<NodeId> CutBoundaryNodes(const Graph& g,
                                     const std::vector<char>& side);

}  // namespace overlay
