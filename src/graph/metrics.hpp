// Graph measurements: distances, diameter, connectivity, components.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace overlay {

/// Marks unreachable nodes in distance vectors.
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;

/// BFS hop distances from `source` (kUnreachable where disconnected).
std::vector<std::uint32_t> BfsDistances(const Graph& g, NodeId source);

/// Max finite distance from `source` (the node's eccentricity).
std::uint32_t Eccentricity(const Graph& g, NodeId source);

/// Exact diameter via all-sources BFS. O(n·m): use for n <= a few thousand.
/// Returns 0 for empty/singleton graphs; requires a connected graph otherwise.
std::uint32_t ExactDiameter(const Graph& g);

/// Diameter lower bound by `sweeps` rounds of double-sweep BFS (each sweep:
/// BFS from the farthest node found so far). Cheap and usually tight on the
/// graph families used here.
std::uint32_t ApproxDiameter(const Graph& g, std::uint32_t sweeps = 4);

/// True iff g is connected (n <= 1 counts as connected).
bool IsConnected(const Graph& g);

/// True iff the *undirected version* of g is connected — the paper's weak
/// connectivity.
bool IsWeaklyConnected(const Digraph& g);

/// Component label per node (labels are 0..k-1 in first-seen order).
std::vector<std::uint32_t> ConnectedComponentLabels(const Graph& g);

/// Sizes indexed by component label.
std::vector<std::size_t> ComponentSizes(const std::vector<std::uint32_t>& labels);

}  // namespace overlay
