// Conductance estimation (Definition 1.7) for benign multigraphs.
//
// Exact conductance is NP-hard, so the library offers three instruments:
//  * ExactConductance    — subset enumeration, n <= 22 (test oracle);
//  * LazySpectralGap     — 1 - λ₂ of the lazy walk matrix by deflated power
//                          iteration; Cheeger brackets Φ within
//                          [gap/2, sqrt(2·gap)];
//  * SweepCutConductance — Fiedler-vector sweep, a genuine *upper bound*
//                          witness (an actual cut achieving that value).
// The benchmark for Lemma 3.3 tracks the spectral gap across evolutions: the
// lemma's Φ(G_{i+1}) >= c·sqrt(ℓ)·Φ(G_i) shape is visible as monotone
// geometric gap growth until the constant-conductance plateau.
#pragma once

#include <cstdint>

#include "graph/multigraph.hpp"

namespace overlay {

/// Cheeger-style bracket on conductance derived from a spectral gap.
struct ConductanceBounds {
  double lower = 0.0;  ///< gap / 2 <= Φ
  double upper = 0.0;  ///< Φ <= sqrt(2 * gap)
};

/// Exact Definition-1.7 conductance of a regular multigraph by enumerating
/// every subset with 1 <= |S| <= n/2. Requires n <= 22 and Δ-regularity.
double ExactConductance(const Multigraph& g, std::size_t delta);

/// Spectral gap 1 - λ₂ of the lazy random-walk matrix P (P[v][w] =
/// multiplicity(v,w) / Δ). Requires Δ-regularity (uniform stationary
/// distribution); laziness guarantees λ₂ >= 0 so the power iteration on the
/// deflated space converges to λ₂ from any generic start.
/// `iterations` bounds the work; values ~300 give 2-3 digits on the graphs
/// used here.
double LazySpectralGap(const Multigraph& g, std::size_t delta,
                       std::size_t iterations = 300, std::uint64_t seed = 1);

/// Cheeger bracket from LazySpectralGap.
ConductanceBounds SpectralConductanceBounds(const Multigraph& g,
                                            std::size_t delta,
                                            std::size_t iterations = 300,
                                            std::uint64_t seed = 1);

/// Upper-bound witness: approximates the second eigenvector, sorts nodes by
/// entry, and returns the best prefix-cut conductance (Definition 1.7 value
/// of an actual cut — always >= the true Φ).
double SweepCutConductance(const Multigraph& g, std::size_t delta,
                           std::size_t iterations = 300,
                           std::uint64_t seed = 1);

}  // namespace overlay
