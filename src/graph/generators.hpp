// Workload generators: the input topologies the paper's setting motivates.
//
// The adversarially bad inputs for overlay construction are long, thin graphs
// (lines, cycles, caterpillars, lollipops — conductance Θ(1/n)); realistic
// P2P-join inputs are ragged low-degree digraphs; the hybrid-model benchmarks
// additionally need high-degree graphs (stars, cliques, G(n,p)). Every
// generator is deterministic in its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace overlay {
namespace gen {

/// Path 0-1-2-…-(n-1). The paper's canonical worst case (Ω(log n) lower bound).
Graph Line(std::size_t n);

/// Cycle on n >= 3 nodes.
Graph Cycle(std::size_t n);

/// Star: node 0 adjacent to all others (max degree n-1).
Graph Star(std::size_t n);

/// Complete graph K_n.
Graph Complete(std::size_t n);

/// Complete binary tree on n nodes (heap indexing).
Graph BinaryTree(std::size_t n);

/// Uniform random labelled tree (random parent attachment).
Graph RandomTree(std::size_t n, std::uint64_t seed);

/// rows x cols grid; Torus wraps both dimensions.
Graph Grid(std::size_t rows, std::size_t cols);
Graph Torus(std::size_t rows, std::size_t cols);

/// Hypercube on 2^dim nodes.
Graph Hypercube(std::uint32_t dim);

/// Random d-regular simple graph via configuration model with retries.
/// Requires n*d even, d < n. The generated graph may be disconnected for
/// tiny d; callers needing connectivity should use ConnectedRandomRegular.
Graph RandomRegular(std::size_t n, std::size_t d, std::uint64_t seed);

/// RandomRegular retried until connected (d >= 3 makes this near-certain).
Graph ConnectedRandomRegular(std::size_t n, std::size_t d, std::uint64_t seed);

/// Erdős–Rényi G(n, p).
Graph Gnp(std::size_t n, double p, std::uint64_t seed);

/// G(n, p) unioned with a random spanning tree (guaranteed connected).
Graph ConnectedGnp(std::size_t n, double p, std::uint64_t seed);

/// Two K_k cliques joined by a path of `path_len` extra nodes. Conductance
/// Θ(1/k²) — a classic slow-mixing topology.
Graph Barbell(std::size_t k, std::size_t path_len);

/// K_k clique with a tail path of `tail` nodes.
Graph Lollipop(std::size_t k, std::size_t tail);

/// Spine path of `spine` nodes, each with `legs` pendant nodes.
Graph Caterpillar(std::size_t spine, std::size_t legs);

/// Watts–Strogatz small world: ring of n nodes, each tied to k nearest
/// (k even), each edge rewired with probability beta.
Graph WattsStrogatz(std::size_t n, std::size_t k, double beta,
                    std::uint64_t seed);

/// Disjoint union; node ids of graph i are offset by the sizes of 0..i-1.
Graph DisjointUnion(const std::vector<Graph>& parts);

/// Weakly connected random digraph with out-degree <= out_deg: a random
/// attachment tree (guaranteeing weak connectivity) plus random extra arcs.
/// Models a ragged P2P join graph where each joiner knows a few prior nodes.
Digraph RandomKnowledgeGraph(std::size_t n, std::size_t out_deg,
                             std::uint64_t seed);

/// Directed line 0 -> 1 -> … -> n-1 (out-degree 1, the Aspnes–Wu setting).
Digraph DirectedLine(std::size_t n);

}  // namespace gen
}  // namespace overlay
