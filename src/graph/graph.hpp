// Static graph types: undirected CSR `Graph` and directed `Digraph`.
//
// `Digraph` models the paper's knowledge graph (u -> v iff u stores id(v)).
// `Graph` is its undirected ("symmetrized") view, the object all of Section 4's
// problems are defined on. Both are immutable after construction; use
// `GraphBuilder` / `DigraphBuilder` to assemble edge lists.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/ids.hpp"

namespace overlay {

class Graph;

/// Accumulates undirected edges, then freezes them into a CSR `Graph`.
/// Duplicate edges and self-loops are deduplicated/discarded by default
/// (simple-graph semantics); the multigraph type in multigraph.hpp keeps them.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes) : n_(num_nodes) {}

  /// Adds the undirected edge {u, v}. Self-loops are ignored.
  void AddEdge(NodeId u, NodeId v);

  std::size_t num_nodes() const { return n_; }

  /// Freezes into an immutable simple graph (dedupes parallel edges).
  Graph Build() &&;

 private:
  std::size_t n_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

/// Immutable undirected simple graph in compressed-sparse-row form.
class Graph {
 public:
  Graph() = default;

  std::size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_edges() const { return adjacency_.size() / 2; }

  /// Neighbors of `v`, sorted ascending.
  std::span<const NodeId> Neighbors(NodeId v) const;

  std::size_t Degree(NodeId v) const;
  std::size_t MaxDegree() const;

  /// True iff {u,v} is an edge (binary search, O(log deg)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// All edges as (u, v) with u < v.
  std::vector<std::pair<NodeId, NodeId>> EdgeList() const;

  /// Renames node ids by `perm` (perm[old] = new); used by id-invariance tests.
  Graph Permuted(const std::vector<NodeId>& perm) const;

 private:
  friend class GraphBuilder;
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;     // size 2m, sorted per node
};

class Digraph;

/// Accumulates directed arcs, then freezes them into a `Digraph`.
class DigraphBuilder {
 public:
  explicit DigraphBuilder(std::size_t num_nodes) : n_(num_nodes) {}

  /// Adds the arc (u -> v): u knows id(v). Self-arcs are ignored.
  void AddArc(NodeId u, NodeId v);

  std::size_t num_nodes() const { return n_; }

  Digraph Build() &&;

 private:
  std::size_t n_;
  std::vector<Arc> arcs_;
};

/// Immutable directed knowledge graph with out-adjacency in CSR form.
class Digraph {
 public:
  Digraph() = default;

  std::size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_arcs() const { return adjacency_.size(); }

  /// Out-neighbors of `v` (identifiers v stores), sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId v) const;

  std::size_t OutDegree(NodeId v) const;

  /// In-degree of every node (how many nodes store each id).
  std::vector<std::size_t> InDegrees() const;

  /// Degree (in + out) of the paper's Section 1.2 definition, per node.
  std::vector<std::size_t> TotalDegrees() const;
  std::size_t MaxTotalDegree() const;

  /// The undirected version: each node "introduces itself" to out-neighbors.
  Graph Undirected() const;

 private:
  friend class DigraphBuilder;
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> adjacency_;
};

}  // namespace overlay
