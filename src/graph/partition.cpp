#include "graph/partition.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace overlay {
namespace {

/// ExecPolicy::ShardsFor, restated locally so graph/ does not depend on
/// sim/: at least 1 block, at most one block per node.
std::size_t ClampShards(std::size_t n, std::size_t num_shards) {
  const std::size_t s = num_shards < 1 ? 1 : num_shards;
  return n < 1 ? 1 : (s > n ? n : s);
}

/// Stateless seed-keyed hash for label-propagation tie-breaks.
std::uint64_t TieHash(std::uint64_t seed, NodeId label) {
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (label + 1ULL));
  return SplitMix64(state);
}

/// METIS-style partition validation (cf. SNIPPETS.md snippet 2): the blocks
/// induced by `r` must cover [0, n) exactly, never intersect (both follow
/// from new_of_old/old_of_new being inverse bijections), match the engine's
/// contiguous split sizes, keep balance <= 1.05 (modulo the +1 a remainder
/// block legitimately carries), and pin the minimum old id to new id 0.
void ValidateRelabeling(const Relabeling& r) {
  const std::size_t n = r.num_nodes();
  const std::size_t s_count = r.num_shards;
  OVERLAY_CHECK(r.old_of_new.size() == n, "relabeling arrays must match");
  OVERLAY_CHECK(s_count == ClampShards(n, s_count),
                "relabeling block count must be ShardsFor-clamped");

  std::vector<char> seen(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId nv = r.new_of_old[v];
    OVERLAY_CHECK(nv < n, "relabeling maps outside [0, n)");
    OVERLAY_CHECK(!seen[nv], "relabeling blocks must not intersect");
    seen[nv] = 1;
    OVERLAY_CHECK(r.old_of_new[nv] == v, "old_of_new must invert new_of_old");
  }
  // `seen` all set <=> exact cover; with the bijection checked above the
  // contiguous blocks [ShardBase(s), ShardBase(s+1)) partition [0, n) by
  // construction, in exactly the engine's sizes.
  if (n > 0) {
    OVERLAY_CHECK(r.new_of_old[0] == 0,
                  "minimum old id must keep new id 0 (root-election pin)");
  }
  const double mean = static_cast<double>(n) / static_cast<double>(s_count);
  const double max_block =
      static_cast<double>(n / s_count + (n % s_count ? 1 : 0));
  OVERLAY_CHECK(max_block <= 1.05 * mean + 1.0,
                "partition balance factor must stay within 1.05");
}

}  // namespace

bool Relabeling::IsIdentity() const {
  for (std::size_t v = 0; v < new_of_old.size(); ++v) {
    if (new_of_old[v] != v) return false;
  }
  return true;
}

std::size_t ContiguousShardOf(NodeId v, std::size_t n,
                              std::size_t num_shards) {
  const std::size_t s_count = ClampShards(n, num_shards);
  const std::size_t base = n / s_count;
  const std::size_t rem = n % s_count;
  const std::size_t big = rem * (base + 1);
  return v < big ? v / (base + 1) : rem + (v - big) / base;
}

NodeId ContiguousShardBase(std::size_t s, std::size_t n,
                           std::size_t num_shards) {
  const std::size_t s_count = ClampShards(n, num_shards);
  const std::size_t base = n / s_count;
  const std::size_t rem = n % s_count;
  return static_cast<NodeId>(s * base + std::min(s, rem));
}

Relabeling IdentityRelabeling(std::size_t n, std::size_t num_shards) {
  Relabeling r;
  r.num_shards = ClampShards(n, num_shards);
  r.new_of_old.resize(n);
  std::iota(r.new_of_old.begin(), r.new_of_old.end(), NodeId{0});
  r.old_of_new = r.new_of_old;
  return r;
}

Relabeling RelabelFor(const Graph& g, std::size_t num_shards,
                      std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  const std::size_t s_count = ClampShards(n, num_shards);
  if (s_count <= 1) return IdentityRelabeling(n, num_shards);

  const std::size_t base = n / s_count;
  const std::size_t rem = n % s_count;
  // Clusters may grow to the largest block size: anything bigger would have
  // to be split at pack time no matter where it lands.
  const std::size_t cluster_cap = base + (rem ? 1 : 0);

  // Size-capped asynchronous label propagation, ascending node order, a
  // bounded number of sweeps. Every decision is a pure function of
  // (adjacency, seed): ties break by (count, seed-keyed hash, label), so the
  // pass is deterministic and different seeds explore different clusterings.
  std::vector<NodeId> label(n);
  std::iota(label.begin(), label.end(), NodeId{0});
  std::vector<std::size_t> cluster_size(n, 1);
  std::vector<std::size_t> count(n, 0);   // per-label scratch, reset via touch
  std::vector<NodeId> touched;            // labels seen at the current node
  constexpr int kMaxSweeps = 5;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    std::size_t moved = 0;
    for (NodeId v = 0; v < n; ++v) {
      touched.clear();
      for (const NodeId u : g.Neighbors(v)) {
        const NodeId lu = label[u];
        if (count[lu] == 0) touched.push_back(lu);
        ++count[lu];
      }
      const NodeId cur = label[v];
      NodeId best = cur;
      std::size_t best_count = count[cur];  // 0 when no neighbor shares it
      std::uint64_t best_hash = TieHash(seed, cur);
      for (const NodeId cand : touched) {
        if (cand == cur) continue;
        if (cluster_size[cand] + 1 > cluster_cap) continue;
        const std::uint64_t h = TieHash(seed, cand);
        if (count[cand] > best_count ||
            (count[cand] == best_count &&
             (h < best_hash || (h == best_hash && cand < best)))) {
          best = cand;
          best_count = count[cand];
          best_hash = h;
        }
      }
      for (const NodeId lu : touched) count[lu] = 0;
      if (best != cur) {
        --cluster_size[cur];
        ++cluster_size[best];
        label[v] = best;
        ++moved;
      }
    }
    if (moved == 0) break;
  }

  // Collect clusters as member lists, indexed in order of first appearance
  // (ascending old id), members ascending within a cluster.
  std::vector<std::size_t> dense_of_label(n, n);  // n = unassigned
  std::vector<std::vector<NodeId>> members;
  for (NodeId v = 0; v < n; ++v) {
    std::size_t& idx = dense_of_label[label[v]];
    if (idx == n) {
      idx = members.size();
      members.emplace_back();
    }
    members[idx].push_back(v);
  }

  // Deterministic first-fit-decreasing bin-pack into the engine's exact
  // block sizes: biggest clusters first into the emptiest block; a cluster
  // that does not fit whole is split across the emptiest blocks. Ties on
  // remaining capacity resolve to the lowest block index, ties on cluster
  // size to the cluster with the smallest first member.
  std::vector<std::size_t> order(members.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (members[a].size() != members[b].size()) {
                       return members[a].size() > members[b].size();
                     }
                     return members[a].front() < members[b].front();
                   });
  std::vector<std::size_t> remaining(s_count);
  for (std::size_t s = 0; s < s_count; ++s) {
    remaining[s] = base + (s < rem ? 1 : 0);
  }
  std::vector<std::vector<NodeId>> assigned(s_count);
  for (const std::size_t c : order) {
    std::span<const NodeId> left(members[c]);
    while (!left.empty()) {
      std::size_t pick = 0;
      for (std::size_t s = 1; s < s_count; ++s) {
        if (remaining[s] > remaining[pick]) pick = s;
      }
      const std::size_t take = std::min(left.size(), remaining[pick]);
      OVERLAY_CHECK(take > 0, "bin-pack ran out of block capacity");
      assigned[pick].insert(assigned[pick].end(), left.begin(),
                            left.begin() + take);
      remaining[pick] -= take;
      left = left.subspan(take);
    }
  }

  // Layout: block by block, assignment order within a block — each block is
  // exactly one contiguous new-id range of the engine's split.
  Relabeling r;
  r.num_shards = s_count;
  r.new_of_old.assign(n, kInvalidNode);
  r.old_of_new.assign(n, kInvalidNode);
  NodeId next = 0;
  for (std::size_t s = 0; s < s_count; ++s) {
    OVERLAY_CHECK(remaining[s] == 0, "bin-pack must fill every block");
    for (const NodeId v : assigned[s]) {
      r.new_of_old[v] = next;
      r.old_of_new[next] = v;
      ++next;
    }
  }

  // Pin the minimum old id (0 — ids are dense) to new id 0 so min-id root
  // elections agree across the two id spaces. A two-node swap perturbs
  // locality by at most two nodes.
  if (r.new_of_old[0] != 0) {
    const NodeId displaced = r.old_of_new[0];
    const NodeId slot = r.new_of_old[0];
    r.new_of_old[0] = 0;
    r.new_of_old[displaced] = slot;
    r.old_of_new[0] = 0;
    r.old_of_new[slot] = displaced;
  }

  ValidateRelabeling(r);
  return r;
}

Graph ApplyRelabeling(const Graph& g, const Relabeling& r) {
  OVERLAY_CHECK(r.num_nodes() == g.num_nodes(),
                "relabeling built for a different node count");
  return g.Permuted(r.new_of_old);
}

PartitionStats MeasurePartition(const Graph& g, std::size_t num_shards) {
  const std::size_t n = g.num_nodes();
  PartitionStats stats;
  stats.num_blocks = ClampShards(n, num_shards);
  const std::size_t base = n / stats.num_blocks;
  const std::size_t rem = n % stats.num_blocks;
  const std::size_t big = rem * (base + 1);
  const auto block_of = [&](NodeId v) {
    return v < big ? v / (base + 1) : rem + (v - big) / base;
  };
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t bv = block_of(v);
    for (const NodeId u : g.Neighbors(v)) {
      if (u <= v) continue;  // count each undirected edge once
      if (block_of(u) == bv) {
        ++stats.local_edges;
      } else {
        ++stats.cut_edges;
      }
    }
  }
  const double mean = static_cast<double>(n) / stats.num_blocks;
  stats.balance = mean == 0.0 ? 1.0 : (base + (rem ? 1 : 0)) / mean;
  return stats;
}

std::vector<NodeId> MapIdsBack(const Relabeling& r,
                               std::span<const NodeId> by_new) {
  OVERLAY_CHECK(by_new.size() == r.num_nodes(),
                "per-node vector size must match the relabeling");
  std::vector<NodeId> by_old(by_new.size());
  for (std::size_t v = 0; v < by_new.size(); ++v) {
    const NodeId value = by_new[r.new_of_old[v]];
    by_old[v] = value == kInvalidNode ? kInvalidNode : r.old_of_new[value];
  }
  return by_old;
}

}  // namespace overlay
