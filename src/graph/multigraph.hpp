// Mutable multigraph with parallel edges and self-loops.
//
// Benign graphs (Definition 2.1) are multigraphs by construction: MakeBenign
// copies every initial edge Λ times and pads nodes with self-loops until each
// node owns exactly Δ edge *slots*. A node's degree is its slot count; a
// self-loop occupies one slot of its node. Random-walk steps pick a slot
// uniformly at random, so a node with Δ/2 loop slots is "lazy" exactly in the
// paper's sense (stays put with probability >= 1/2).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"

namespace overlay {

class Graph;

/// Undirected multigraph stored as per-node slot lists. An undirected edge
/// {u, v}, u != v, appears once in u's slots and once in v's; a self-loop
/// {v, v} appears once in v's slots.
class Multigraph {
 public:
  explicit Multigraph(std::size_t num_nodes) : slots_(num_nodes) {}

  std::size_t num_nodes() const { return slots_.size(); }

  /// Number of edge slots at v (the node's degree in Definition 2.1's sense).
  std::size_t Degree(NodeId v) const;

  /// All slot targets of v (self-loops appear as v itself).
  std::span<const NodeId> Slots(NodeId v) const;

  /// Number of self-loop slots at v.
  std::size_t SelfLoopCount(NodeId v) const;

  /// Adds the undirected edge {u, v} (one slot at each endpoint).
  /// Requires u != v; use AddSelfLoop for loops.
  void AddEdge(NodeId u, NodeId v);

  /// Adds one self-loop slot at v.
  void AddSelfLoop(NodeId v);

  /// Uniformly random slot target of v (a single lazy-walk step).
  NodeId RandomNeighbor(NodeId v, Rng& rng) const;

  /// True iff every node has exactly `delta` slots.
  bool IsRegular(std::size_t delta) const;

  /// True iff every node has at least `min_loops` self-loop slots.
  bool IsLazy(std::size_t min_loops) const;

  /// Number of slot-counted edges crossing the cut (in_set, complement),
  /// ignoring self-loops. `in_set[v]` marks membership.
  std::size_t CutWeight(const std::vector<char>& in_set) const;

  /// Conductance of S per Definition 1.7: cut(S) / (Δ * |S|), where Δ is the
  /// common degree. Requires the graph to be regular and 0 < |S| <= n/2.
  double ConductanceOf(const std::vector<char>& in_set, std::size_t delta) const;

  /// Collapses to a simple graph (drops loops, dedupes parallel edges).
  Graph ToSimpleGraph() const;

  /// Weighted edge list (u < v) -> multiplicity, loops excluded. Input for
  /// Stoer–Wagner.
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> WeightedEdges() const;

  /// Total non-loop slot-counted edge multiplicity (each edge counted once).
  std::uint64_t TotalEdgeMultiplicity() const;

 private:
  std::vector<std::vector<NodeId>> slots_;
};

}  // namespace overlay
