// Disjoint-set forest with union by size and path halving.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/check.hpp"

namespace overlay {

/// Classic union-find; used by connectivity checks, spanning-tree validators,
/// and component bookkeeping in the benchmark harness.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t Find(std::size_t x) {
    OVERLAY_CHECK(x < parent_.size(), "union-find index out of range");
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if the union merged two distinct sets.
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  bool Connected(std::size_t a, std::size_t b) { return Find(a) == Find(b); }
  std::size_t ComponentCount() const { return components_; }
  std::size_t ComponentSize(std::size_t x) { return size_[Find(x)]; }
  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_;
};

}  // namespace overlay
