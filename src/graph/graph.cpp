#include "graph/graph.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace overlay {

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  OVERLAY_CHECK(u < n_ && v < n_, "edge endpoint out of range");
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::Build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.offsets_.assign(n_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  for (NodeId v = 0; v < n_; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

std::span<const NodeId> Graph::Neighbors(NodeId v) const {
  OVERLAY_CHECK(v < num_nodes(), "node out of range");
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::size_t Graph::Degree(NodeId v) const {
  OVERLAY_CHECK(v < num_nodes(), "node out of range");
  return offsets_[v + 1] - offsets_[v];
}

std::size_t Graph::MaxDegree() const {
  std::size_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    best = std::max(best, Degree(v));
  }
  return best;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::EdgeList() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

Graph Graph::Permuted(const std::vector<NodeId>& perm) const {
  OVERLAY_CHECK(perm.size() == num_nodes(), "permutation size mismatch");
  GraphBuilder builder(num_nodes());
  for (const auto& [u, v] : EdgeList()) {
    builder.AddEdge(perm[u], perm[v]);
  }
  return std::move(builder).Build();
}

void DigraphBuilder::AddArc(NodeId u, NodeId v) {
  OVERLAY_CHECK(u < n_ && v < n_, "arc endpoint out of range");
  if (u == v) return;
  arcs_.push_back({u, v});
}

Digraph DigraphBuilder::Build() && {
  std::sort(arcs_.begin(), arcs_.end(), [](const Arc& a, const Arc& b) {
    return std::pair{a.from, a.to} < std::pair{b.from, b.to};
  });
  arcs_.erase(std::unique(arcs_.begin(), arcs_.end()), arcs_.end());

  Digraph g;
  g.offsets_.assign(n_ + 1, 0);
  for (const Arc& a : arcs_) {
    ++g.offsets_[a.from + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(arcs_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Arc& a : arcs_) {
    g.adjacency_[cursor[a.from]++] = a.to;
  }
  return g;
}

std::span<const NodeId> Digraph::OutNeighbors(NodeId v) const {
  OVERLAY_CHECK(v < num_nodes(), "node out of range");
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::size_t Digraph::OutDegree(NodeId v) const {
  OVERLAY_CHECK(v < num_nodes(), "node out of range");
  return offsets_[v + 1] - offsets_[v];
}

std::vector<std::size_t> Digraph::InDegrees() const {
  std::vector<std::size_t> in(num_nodes(), 0);
  for (NodeId target : adjacency_) {
    ++in[target];
  }
  return in;
}

std::vector<std::size_t> Digraph::TotalDegrees() const {
  std::vector<std::size_t> total = InDegrees();
  for (NodeId v = 0; v < num_nodes(); ++v) {
    total[v] += OutDegree(v);
  }
  return total;
}

std::size_t Digraph::MaxTotalDegree() const {
  const auto total = TotalDegrees();
  std::size_t best = 0;
  for (const std::size_t d : total) best = std::max(best, d);
  return best;
}

Graph Digraph::Undirected() const {
  GraphBuilder builder(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : OutNeighbors(u)) {
      builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

}  // namespace overlay
