#include "graph/conductance.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.hpp"

namespace overlay {

namespace {

/// y = P x for the lazy walk matrix of a Δ-regular multigraph.
void WalkMatVec(const Multigraph& g, std::size_t delta,
                const std::vector<double>& x, std::vector<double>& y) {
  const std::size_t n = g.num_nodes();
  const double inv_delta = 1.0 / static_cast<double>(delta);
  for (NodeId v = 0; v < n; ++v) {
    double acc = 0.0;
    for (NodeId w : g.Slots(v)) {
      acc += x[w];
    }
    y[v] = acc * inv_delta;
  }
}

/// Removes the uniform component (the stationary eigenvector of a regular
/// walk) and normalizes to unit length. Returns the norm before scaling.
double DeflateAndNormalize(std::vector<double>& x) {
  const double n = static_cast<double>(x.size());
  const double mean = std::accumulate(x.begin(), x.end(), 0.0) / n;
  for (double& xi : x) xi -= mean;
  double norm = std::sqrt(
      std::inner_product(x.begin(), x.end(), x.begin(), 0.0));
  if (norm > 0.0) {
    for (double& xi : x) xi /= norm;
  }
  return norm;
}

/// Runs deflated power iteration; on return `x` approximates the second
/// eigenvector and the returned value approximates λ₂ (Rayleigh quotient).
double SecondEigenvalue(const Multigraph& g, std::size_t delta,
                        std::size_t iterations, std::uint64_t seed,
                        std::vector<double>& x) {
  OVERLAY_CHECK(g.IsRegular(delta), "spectral gap requires a regular graph");
  const std::size_t n = g.num_nodes();
  OVERLAY_CHECK(n >= 2, "spectral gap needs at least two nodes");

  Rng rng(seed);
  x.assign(n, 0.0);
  for (double& xi : x) xi = rng.NextDouble() - 0.5;
  DeflateAndNormalize(x);

  std::vector<double> y(n, 0.0);
  double lambda = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    WalkMatVec(g, delta, x, y);
    // Rayleigh quotient before renormalization: x is unit length.
    lambda = std::inner_product(x.begin(), x.end(), y.begin(), 0.0);
    x.swap(y);
    const double norm = DeflateAndNormalize(x);
    if (norm == 0.0) {
      // x landed exactly in the stationary direction: spectrum below is 0.
      return 0.0;
    }
  }
  // Laziness ensures the spectrum is non-negative, but the Rayleigh quotient
  // can round slightly below zero on near-bipartite remainders.
  return std::clamp(lambda, 0.0, 1.0);
}

}  // namespace

double ExactConductance(const Multigraph& g, std::size_t delta) {
  const std::size_t n = g.num_nodes();
  OVERLAY_CHECK(n >= 2 && n <= 22, "exact conductance is limited to n <= 22");
  OVERLAY_CHECK(g.IsRegular(delta), "Definition 1.7 requires regularity");
  double best = 1.0;
  std::vector<char> in_set(n, 0);
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 1; mask < limit - 1; ++mask) {
    const auto size = static_cast<std::size_t>(std::popcount(mask));
    if (size * 2 > n) continue;
    for (std::size_t v = 0; v < n; ++v) {
      in_set[v] = (mask >> v) & 1u;
    }
    best = std::min(best, g.ConductanceOf(in_set, delta));
  }
  return best;
}

double LazySpectralGap(const Multigraph& g, std::size_t delta,
                       std::size_t iterations, std::uint64_t seed) {
  std::vector<double> x;
  const double lambda = SecondEigenvalue(g, delta, iterations, seed, x);
  return 1.0 - lambda;
}

ConductanceBounds SpectralConductanceBounds(const Multigraph& g,
                                            std::size_t delta,
                                            std::size_t iterations,
                                            std::uint64_t seed) {
  const double gap = LazySpectralGap(g, delta, iterations, seed);
  return {gap / 2.0, std::sqrt(2.0 * gap)};
}

double SweepCutConductance(const Multigraph& g, std::size_t delta,
                           std::size_t iterations, std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  OVERLAY_CHECK(n >= 2, "sweep cut needs at least two nodes");
  std::vector<double> fiedler;
  SecondEigenvalue(g, delta, iterations, seed, fiedler);

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&fiedler](NodeId a, NodeId b) { return fiedler[a] < fiedler[b]; });

  // Sweep: maintain crossing-edge count incrementally as nodes move into S.
  std::vector<char> in_set(n, 0);
  std::uint64_t crossing = 0;
  double best = 1.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const NodeId v = order[i];
    // Adding v: edges to S become internal, edges to outside become crossing.
    for (NodeId w : g.Slots(v)) {
      if (w == v) continue;
      if (in_set[w]) {
        --crossing;
      } else {
        ++crossing;
      }
    }
    in_set[v] = 1;
    const std::size_t size = i + 1;
    if (size * 2 > n) break;
    const double phi = static_cast<double>(crossing) /
                       (static_cast<double>(delta) * static_cast<double>(size));
    best = std::min(best, phi);
  }
  return best;
}

}  // namespace overlay
