#include "graph/mincut.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/metrics.hpp"
#include "graph/union_find.hpp"

namespace overlay {

namespace {

/// Stoer–Wagner on a dense weight matrix (destroyed in place).
std::uint64_t StoerWagnerDense(std::vector<std::vector<std::uint64_t>> w) {
  const std::size_t n = w.size();
  OVERLAY_CHECK(n >= 2, "min cut needs at least two nodes");
  std::vector<std::size_t> active(n);
  for (std::size_t i = 0; i < n; ++i) active[i] = i;

  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  while (active.size() > 1) {
    // Maximum adjacency (minimum cut phase) order.
    std::vector<std::uint64_t> conn(active.size(), 0);
    std::vector<char> added(active.size(), 0);
    std::size_t prev = 0, last = 0;
    for (std::size_t step = 0; step < active.size(); ++step) {
      std::size_t pick = active.size();
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!added[i] && (pick == active.size() || conn[i] > conn[pick])) {
          pick = i;
        }
      }
      added[pick] = 1;
      prev = last;
      last = pick;
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!added[i]) conn[i] += w[active[pick]][active[i]];
      }
    }
    best = std::min(best, conn[last]);
    // Merge `last` into `prev`.
    const std::size_t a = active[prev], b = active[last];
    for (std::size_t i = 0; i < active.size(); ++i) {
      const std::size_t c = active[i];
      if (c == a || c == b) continue;
      w[a][c] += w[b][c];
      w[c][a] = w[a][c];
    }
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(last));
  }
  return best;
}

/// Stoer–Wagner tracking supernode contents: identical phase structure to
/// StoerWagnerDense, plus a per-active-node member list so the best
/// cut-of-the-phase can be materialized as a node-set side.
MinCutSideResult StoerWagnerDenseSide(
    std::vector<std::vector<std::uint64_t>> w) {
  const std::size_t n = w.size();
  OVERLAY_CHECK(n >= 2, "min cut needs at least two nodes");
  std::vector<std::size_t> active(n);
  std::vector<std::vector<NodeId>> members(n);
  for (std::size_t i = 0; i < n; ++i) {
    active[i] = i;
    members[i] = {static_cast<NodeId>(i)};
  }

  MinCutSideResult best;
  best.weight = std::numeric_limits<std::uint64_t>::max();
  while (active.size() > 1) {
    std::vector<std::uint64_t> conn(active.size(), 0);
    std::vector<char> added(active.size(), 0);
    std::size_t prev = 0, last = 0;
    for (std::size_t step = 0; step < active.size(); ++step) {
      std::size_t pick = active.size();
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!added[i] && (pick == active.size() || conn[i] > conn[pick])) {
          pick = i;
        }
      }
      added[pick] = 1;
      prev = last;
      last = pick;
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!added[i]) conn[i] += w[active[pick]][active[i]];
      }
    }
    if (conn[last] < best.weight) {
      best.weight = conn[last];
      best.side.assign(n, 0);
      for (const NodeId v : members[active[last]]) best.side[v] = 1;
    }
    const std::size_t a = active[prev], b = active[last];
    for (std::size_t i = 0; i < active.size(); ++i) {
      const std::size_t c = active[i];
      if (c == a || c == b) continue;
      w[a][c] += w[b][c];
      w[c][a] = w[a][c];
    }
    members[a].insert(members[a].end(), members[b].begin(), members[b].end());
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(last));
  }

  // Normalize to the smaller side so strike budgets stretch further.
  std::size_t inside = 0;
  for (const char c : best.side) inside += c != 0;
  if (inside * 2 > n) {
    for (char& c : best.side) c = c == 0;
  }
  return best;
}

}  // namespace

MinCutSideResult StoerWagnerMinCutSide(const Graph& g) {
  const std::size_t n = g.num_nodes();
  OVERLAY_CHECK(n >= 2, "min cut needs at least two nodes");
  OVERLAY_CHECK(IsConnected(g), "min cut defined for connected graphs");
  std::vector<std::vector<std::uint64_t>> w(n,
                                            std::vector<std::uint64_t>(n, 0));
  for (const auto& [u, v] : g.EdgeList()) {
    w[u][v] = 1;
    w[v][u] = 1;
  }
  return StoerWagnerDenseSide(std::move(w));
}

std::uint64_t StoerWagnerMinCut(const Multigraph& g) {
  const std::size_t n = g.num_nodes();
  OVERLAY_CHECK(n >= 2, "min cut needs at least two nodes");
  OVERLAY_CHECK(IsConnected(g.ToSimpleGraph()),
                "min cut defined for connected graphs");
  std::vector<std::vector<std::uint64_t>> w(n,
                                            std::vector<std::uint64_t>(n, 0));
  for (const auto& [edge, mult] : g.WeightedEdges()) {
    w[edge.first][edge.second] += mult;
    w[edge.second][edge.first] += mult;
  }
  return StoerWagnerDense(std::move(w));
}

std::uint64_t StoerWagnerMinCut(const Graph& g) {
  const std::size_t n = g.num_nodes();
  OVERLAY_CHECK(n >= 2, "min cut needs at least two nodes");
  OVERLAY_CHECK(IsConnected(g), "min cut defined for connected graphs");
  std::vector<std::vector<std::uint64_t>> w(n,
                                            std::vector<std::uint64_t>(n, 0));
  for (const auto& [u, v] : g.EdgeList()) {
    w[u][v] = 1;
    w[v][u] = 1;
  }
  return StoerWagnerDense(std::move(w));
}

std::uint64_t KargerMinCutSample(const Multigraph& g, std::size_t trials,
                                 std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  OVERLAY_CHECK(n >= 2, "min cut needs at least two nodes");
  OVERLAY_CHECK(trials >= 1, "need at least one trial");

  // Flatten the multigraph into a multiplicity-respecting edge list once.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : g.Slots(v)) {
      if (v < w) edges.emplace_back(v, w);
    }
  }
  OVERLAY_CHECK(!edges.empty(), "graph has no non-loop edges");

  Rng rng(seed);
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t t = 0; t < trials; ++t) {
    UnionFind uf(n);
    std::vector<std::size_t> order(edges.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);
    for (const std::size_t idx : order) {
      if (uf.ComponentCount() == 2) break;
      uf.Union(edges[idx].first, edges[idx].second);
    }
    if (uf.ComponentCount() != 2) continue;  // disconnected sample; skip
    std::uint64_t crossing = 0;
    for (const auto& [u, v] : edges) {
      if (uf.Find(u) != uf.Find(v)) ++crossing;
    }
    best = std::min(best, crossing);
  }
  OVERLAY_CHECK(best != std::numeric_limits<std::uint64_t>::max(),
                "no contraction trial produced a two-sided cut");
  return best;
}

}  // namespace overlay
