#include "graph/scenario_gen.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <numbers>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/shard_pool.hpp"

namespace overlay {
namespace gen {
namespace {

// Per-stream-index hashing: every random draw below is keyed by
// (seed, domain index [, salt]) and never by the shard layout, which is what
// makes the emitted edge multiset shard-count-invariant. The salts keep the
// topologies' streams disjoint even under one seed.
constexpr std::uint64_t kGnpSalt = 0x6a09e667f3bcc909ULL;
constexpr std::uint64_t kRggSalt = 0xbb67ae8584caa73bULL;
constexpr std::uint64_t kBaSalt = 0x3c6ef372fe94f82bULL;
constexpr std::uint64_t kGnmSalt = 0xa54ff53a5f1d36f1ULL;

std::uint64_t HashMix(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                        (b * 0xbf58476d1ce4e5b9ULL);
  return SplitMix64(state);
}

/// One shard's streaming buffer: the only edge storage that exists while a
/// generator runs, so its high-water mark is the memory guarantee.
struct ShardBuf {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::size_t self_loops = 0;

  void Emit(NodeId u, NodeId v) { edges.emplace_back(u, v); }
};

// ---- GNM: seed-keyed Feistel permutation over the edge-id space ------------
//
// Exactly m *distinct* edges with no cross-shard coordination: the k-th edge
// is Permute(k) for a seed-keyed bijection on [0, E), E = n(n-1)/2, decoded
// as the k-th pair of the strict upper triangle. Distinctness is structural
// (a bijection cannot collide), so GNM is the one catalogue entry with
// duplicate_edges == 0 guaranteed.

struct FeistelPerm {
  std::uint64_t domain = 0;  ///< permutation acts on [0, domain)
  std::uint32_t half_bits = 1;
  std::uint64_t half_mask = 1;
  std::uint64_t keys[4] = {};

  static FeistelPerm Make(std::uint64_t domain, std::uint64_t seed) {
    FeistelPerm p;
    p.domain = domain;
    std::uint32_t bits = 2;
    while (domain > (1ULL << bits)) ++bits;
    p.half_bits = (bits + 1) / 2;
    p.half_mask = (1ULL << p.half_bits) - 1;
    for (std::uint32_t r = 0; r < 4; ++r) {
      p.keys[r] = HashMix(seed, kGnmSalt, r + 1);
    }
    return p;
  }

  std::uint64_t OnePass(std::uint64_t x) const {
    std::uint64_t left = (x >> half_bits) & half_mask;
    std::uint64_t right = x & half_mask;
    for (const std::uint64_t key : keys) {
      const std::uint64_t f = HashMix(key, right, 0) & half_mask;
      const std::uint64_t next_right = left ^ f;
      left = right;
      right = next_right;
    }
    return (left << half_bits) | right;
  }

  /// Cycle-walking keeps the bijection on the non-power-of-two domain; the
  /// walking domain is < 4*|domain|, so expected passes are < 4.
  std::uint64_t Permute(std::uint64_t x) const {
    do {
      x = OnePass(x);
    } while (x >= domain);
    return x;
  }
};

/// Decodes the k-th pair of the strict upper triangle (lexicographic by
/// (u, v), u < v): double-sqrt initial guess, exact integer correction.
std::pair<NodeId, NodeId> DecodeEdgeIndex(std::uint64_t k, std::uint64_t n) {
  const auto offset = [n](std::uint64_t u) {
    return u * n - u * (u + 1) / 2;  // pairs with first endpoint < u
  };
  const double disc = (2.0 * static_cast<double>(n) - 1.0) *
                          (2.0 * static_cast<double>(n) - 1.0) -
                      8.0 * static_cast<double>(k);
  double guess = (2.0 * static_cast<double>(n) - 1.0 -
                  std::sqrt(std::max(disc, 0.0))) /
                 2.0;
  std::uint64_t u = static_cast<std::uint64_t>(
      std::clamp(guess, 0.0, static_cast<double>(n - 2)));
  while (u > 0 && offset(u) > k) --u;
  while (u + 2 < n && offset(u + 1) <= k) ++u;
  const std::uint64_t v = u + 1 + (k - offset(u));
  return {static_cast<NodeId>(u), static_cast<NodeId>(v)};
}

void GenGnmRange(const ScenarioSpec& spec, std::size_t n, std::size_t lo,
                 std::size_t hi, ShardBuf& buf) {
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  OVERLAY_CHECK(spec.edges <= max_edges, "GNM edge target exceeds n(n-1)/2");
  const FeistelPerm perm = FeistelPerm::Make(max_edges, spec.seed);
  buf.edges.reserve(hi - lo);
  for (std::size_t k = lo; k < hi; ++k) {
    const auto [u, v] = DecodeEdgeIndex(perm.Permute(k), n);
    buf.Emit(u, v);
  }
}

// ---- GNP: per-row geometric skipping ---------------------------------------
//
// Row v streams its neighbors w in (v, n) by geometric skips from a
// hash-seeded per-row RNG, so a row costs O(1 + p*(n-v)) regardless of n and
// is a pure function of (seed, v).

void GenGnpRange(const ScenarioSpec& spec, std::size_t n, std::size_t lo,
                 std::size_t hi, ShardBuf& buf) {
  const double p = spec.p;
  if (p <= 0.0) return;
  for (std::size_t v = lo; v < hi; ++v) {
    if (p >= 1.0) {
      for (std::size_t w = v + 1; w < n; ++w) {
        buf.Emit(static_cast<NodeId>(v), static_cast<NodeId>(w));
      }
      continue;
    }
    Rng rng(HashMix(spec.seed, v, kGnpSalt));
    const double log_q = std::log1p(-p);
    std::size_t w = v;
    while (true) {
      const double skip = std::floor(std::log1p(-rng.NextDouble()) / log_q);
      if (skip >= static_cast<double>(n - 1 - w)) break;
      w += 1 + static_cast<std::size_t>(skip);
      buf.Emit(static_cast<NodeId>(v), static_cast<NodeId>(w));
    }
  }
}

// ---- RGG-2D: hash positions + cell-grid sweep ------------------------------

/// Shared read-only geometry every shard sweeps against: all n positions
/// (filled sharded) and a cell -> nodes CSR (one counting sort, O(n)).
/// The cell side is >= radius, so the 3x3 neighborhood around a node's cell
/// covers every candidate within range — the sweep is exact, not heuristic.
struct RggContext {
  double radius = 0.0;
  std::size_t cells_per_side = 1;
  std::vector<double> xs, ys;
  std::vector<std::size_t> cell_starts;  // cells_per_side^2 + 1
  std::vector<NodeId> cell_nodes;        // node ids sorted by cell

  std::size_t CellOf(double coord) const {
    const auto c = static_cast<std::size_t>(
        coord * static_cast<double>(cells_per_side));
    return std::min(c, cells_per_side - 1);
  }
};

double DefaultRggRadius(std::size_t n) {
  const double ln_n = std::log(std::max<std::size_t>(n, 2));
  return std::sqrt(2.0 * ln_n / (std::numbers::pi * static_cast<double>(n)));
}

RggContext BuildRggContext(const ScenarioSpec& spec, std::size_t n,
                           std::size_t shards, ShardPool& pool) {
  RggContext ctx;
  ctx.radius = spec.radius > 0.0 ? spec.radius : DefaultRggRadius(n);
  OVERLAY_CHECK(ctx.radius > 0.0, "RGG radius must be positive");
  // Cell side max(radius, 1/sqrt(n)) keeps the index O(n) even for a tiny
  // caller-supplied radius; a wider cell only adds candidates, never loses
  // one.
  const double max_side = std::max(
      ctx.radius, 1.0 / std::sqrt(static_cast<double>(std::max<std::size_t>(
                            n, 1))));
  ctx.cells_per_side = std::max<std::size_t>(
      1, static_cast<std::size_t>(1.0 / max_side));
  ctx.xs.resize(n);
  ctx.ys.resize(n);
  RunShardedBlocks(pool, n, shards,
                   [&](std::size_t, std::size_t lo, std::size_t hi) {
                     for (std::size_t v = lo; v < hi; ++v) {
                       const auto [x, y] = Rgg2dPosition(
                           spec.seed, static_cast<NodeId>(v));
                       ctx.xs[v] = x;
                       ctx.ys[v] = y;
                     }
                   });
  const std::size_t num_cells = ctx.cells_per_side * ctx.cells_per_side;
  ctx.cell_starts.assign(num_cells + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t cell =
        ctx.CellOf(ctx.ys[v]) * ctx.cells_per_side + ctx.CellOf(ctx.xs[v]);
    ++ctx.cell_starts[cell + 1];
  }
  for (std::size_t c = 1; c <= num_cells; ++c) {
    ctx.cell_starts[c] += ctx.cell_starts[c - 1];
  }
  ctx.cell_nodes.resize(n);
  std::vector<std::size_t> cursor(ctx.cell_starts.begin(),
                                  ctx.cell_starts.end() - 1);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t cell =
        ctx.CellOf(ctx.ys[v]) * ctx.cells_per_side + ctx.CellOf(ctx.xs[v]);
    ctx.cell_nodes[cursor[cell]++] = static_cast<NodeId>(v);
  }
  return ctx;
}

void GenRggRange(const RggContext& ctx, std::size_t lo, std::size_t hi,
                 ShardBuf& buf) {
  const double r2 = ctx.radius * ctx.radius;
  const std::size_t side = ctx.cells_per_side;
  for (std::size_t v = lo; v < hi; ++v) {
    const double x = ctx.xs[v];
    const double y = ctx.ys[v];
    const std::size_t cx = ctx.CellOf(x);
    const std::size_t cy = ctx.CellOf(y);
    const std::size_t x0 = cx == 0 ? 0 : cx - 1;
    const std::size_t x1 = std::min(cx + 1, side - 1);
    const std::size_t y0 = cy == 0 ? 0 : cy - 1;
    const std::size_t y1 = std::min(cy + 1, side - 1);
    for (std::size_t gy = y0; gy <= y1; ++gy) {
      for (std::size_t gx = x0; gx <= x1; ++gx) {
        const std::size_t cell = gy * side + gx;
        for (std::size_t i = ctx.cell_starts[cell];
             i < ctx.cell_starts[cell + 1]; ++i) {
          const NodeId w = ctx.cell_nodes[i];
          if (w <= v) continue;  // shard owning the lower id emits the edge
          const double dx = ctx.xs[w] - x;
          const double dy = ctx.ys[w] - y;
          if (dx * dx + dy * dy <= r2) {
            buf.Emit(static_cast<NodeId>(v), w);
          }
        }
      }
    }
  }
}

// ---- grid / torus ----------------------------------------------------------

void GenGridRange(const ScenarioSpec& spec, std::size_t rows, std::size_t cols,
                  std::size_t lo, std::size_t hi, ShardBuf& buf) {
  const bool wrap = spec.topology == Topology::kTorus2d;
  for (std::size_t v = lo; v < hi; ++v) {
    const std::size_t r = v / cols;
    const std::size_t c = v % cols;
    if (c + 1 < cols) {
      buf.Emit(static_cast<NodeId>(v), static_cast<NodeId>(v + 1));
    } else if (wrap && cols > 2) {
      // cols == 2 would re-emit the {v, v-1} edge; the plain right edge
      // above already covers the wrap in that degenerate shape.
      buf.Emit(static_cast<NodeId>(v), static_cast<NodeId>(r * cols));
    }
    if (r + 1 < rows) {
      buf.Emit(static_cast<NodeId>(v), static_cast<NodeId>(v + cols));
    } else if (wrap && rows > 2) {
      buf.Emit(static_cast<NodeId>(v), static_cast<NodeId>(c));
    }
  }
}

// ---- Barabási–Albert: position-keyed attachment resolution -----------------
//
// The Batagelj–Brandes sequential construction writes an array M of edge
// endpoints (M[2e] = e-th edge's source = e/d, M[2e+1] = M[r] for a uniform
// r < 2e+1) and reads edges as (M[2e], M[2e+1]). The streaming version
// (Sanders–Schulz) deletes the array: M[2e] is computable directly and
// M[odd] is resolved by re-drawing the *same* hash-keyed r and recursing —
// so any shard can compute any edge in O(1) expected without seeing the
// attachment history. Attachment to the emitting node itself (a self-loop in
// the multigraph formulation) is counted and skipped.

NodeId ResolveBaEndpoint(std::uint64_t seed, std::uint64_t pos,
                         std::size_t d) {
  while (pos & 1) {
    pos = HashMix(seed, pos, kBaSalt) % pos;
  }
  return static_cast<NodeId>(pos / 2 / d);
}

void GenBaRange(const ScenarioSpec& spec, std::size_t lo, std::size_t hi,
                ShardBuf& buf) {
  const std::size_t d = std::max<std::size_t>(spec.degree, 1);
  buf.edges.reserve((hi - lo) * d);
  for (std::size_t v = lo; v < hi; ++v) {
    for (std::size_t i = 0; i < d; ++i) {
      const std::uint64_t e = static_cast<std::uint64_t>(v) * d + i;
      const NodeId t = ResolveBaEndpoint(spec.seed, 2 * e + 1, d);
      if (t == v) {
        ++buf.self_loops;
      } else {
        buf.Emit(static_cast<NodeId>(v), t);
      }
    }
  }
}

// ---- ring + chords ---------------------------------------------------------
//
// Bit-for-bit the historical bench/scenario_workload.hpp overlay: the same
// per-node chord hash, so every recorded BENCH_* baseline keeps its
// topology. The silent part is now counted: a chord draw that lands on
// w == v (self-loop) is skipped here, and one that lands on a ring edge or
// repeats a chord is deduplicated by the builder and shows up in
// duplicate_edges.

void GenRingChordsRange(const ScenarioSpec& spec, std::size_t n,
                        std::size_t lo, std::size_t hi, ShardBuf& buf) {
  const std::size_t chords = spec.degree;
  buf.edges.reserve((hi - lo) * (1 + chords));
  for (std::size_t v = lo; v < hi; ++v) {
    if (n > 1) {
      buf.Emit(static_cast<NodeId>(v), static_cast<NodeId>((v + 1) % n));
    }
    for (std::size_t j = 0; j < chords; ++j) {
      std::uint64_t state = spec.seed ^ (v * 0x9e3779b97f4a7c15ULL) ^
                            (j * 0xbf58476d1ce4e5b9ULL);
      const NodeId w = static_cast<NodeId>(SplitMix64(state) % n);
      if (w == v) {
        ++buf.self_loops;
      } else {
        buf.Emit(static_cast<NodeId>(v), w);
      }
    }
  }
}

std::pair<std::size_t, std::size_t> GridDims(const ScenarioSpec& spec) {
  if (spec.rows > 0 && spec.cols > 0) return {spec.rows, spec.cols};
  const auto side = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::sqrt(static_cast<double>(spec.n))));
  return {side, side};
}

}  // namespace

const char* TopologyName(Topology t) {
  switch (t) {
    case Topology::kRingChords: return "ring";
    case Topology::kGnm: return "gnm";
    case Topology::kGnp: return "gnp";
    case Topology::kRgg2d: return "rgg";
    case Topology::kGrid2d: return "grid";
    case Topology::kTorus2d: return "torus";
    case Topology::kBarabasiAlbert: return "ba";
  }
  return "?";
}

bool ParseTopology(std::string_view name, Topology* out) {
  constexpr Topology kAll[] = {
      Topology::kRingChords, Topology::kGnm,     Topology::kGnp,
      Topology::kRgg2d,      Topology::kGrid2d,  Topology::kTorus2d,
      Topology::kBarabasiAlbert};
  for (const Topology t : kAll) {
    if (name == TopologyName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

std::size_t ScenarioNumNodes(const ScenarioSpec& spec) {
  if (spec.topology == Topology::kGrid2d ||
      spec.topology == Topology::kTorus2d) {
    const auto [rows, cols] = GridDims(spec);
    return rows * cols;
  }
  return spec.n;
}

std::pair<double, double> Rgg2dPosition(std::uint64_t seed, NodeId v) {
  const double x = static_cast<double>(HashMix(seed, v, kRggSalt) >> 11) *
                   0x1.0p-53;
  const double y =
      static_cast<double>(HashMix(seed, v, kRggSalt + 1) >> 11) * 0x1.0p-53;
  return {x, y};
}

ScenarioGraph BuildScenario(const ScenarioSpec& spec, const ExecPolicy& exec) {
  const std::size_t n = ScenarioNumNodes(spec);
  OVERLAY_CHECK(n > 0, "scenario needs at least one node");
  OVERLAY_CHECK(n <= static_cast<std::size_t>(kInvalidNode),
                "scenario exceeds the NodeId space");
  ShardPool& pl = exec.Pool();

  // GNM streams over edge indices; every other topology streams over node
  // ids. Either way shard s owns one contiguous block of the domain.
  const bool edge_domain = spec.topology == Topology::kGnm;
  const std::size_t domain = edge_domain ? spec.edges : n;
  const std::size_t shards = exec.ShardsFor(domain);

  RggContext rgg;
  if (spec.topology == Topology::kRgg2d) {
    rgg = BuildRggContext(spec, n, shards, pl);
  }
  const auto [rows, cols] = GridDims(spec);

  std::vector<ShardBuf> bufs(shards);
  if (domain > 0) {
    RunShardedBlocks(
        pl, domain, shards,
        [&](std::size_t s, std::size_t lo, std::size_t hi) {
          ShardBuf& buf = bufs[s];
          switch (spec.topology) {
            case Topology::kRingChords:
              GenRingChordsRange(spec, n, lo, hi, buf);
              break;
            case Topology::kGnm:
              GenGnmRange(spec, n, lo, hi, buf);
              break;
            case Topology::kGnp:
              GenGnpRange(spec, n, lo, hi, buf);
              break;
            case Topology::kRgg2d:
              GenRggRange(rgg, lo, hi, buf);
              break;
            case Topology::kGrid2d:
            case Topology::kTorus2d:
              GenGridRange(spec, rows, cols, lo, hi, buf);
              break;
            case Topology::kBarabasiAlbert:
              GenBaRange(spec, lo, hi, buf);
              break;
          }
        });
  }

  ScenarioGraph out;
  GraphBuilder builder(n);
  for (ShardBuf& buf : bufs) {
    out.stats.edges_emitted += buf.edges.size();
    out.stats.self_loops_skipped += buf.self_loops;
    out.stats.peak_shard_edges =
        std::max(out.stats.peak_shard_edges, buf.edges.size());
    for (const auto& [u, v] : buf.edges) builder.AddEdge(u, v);
    buf.edges = {};  // streaming buffers die as they merge
  }
  out.graph = std::move(builder).Build();
  out.stats.realized_edges = out.graph.num_edges();
  out.stats.duplicate_edges =
      out.stats.edges_emitted - out.stats.realized_edges;
  return out;
}

ScenarioSpec SpecForTopology(Topology t, std::size_t n, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.topology = t;
  spec.n = n;
  spec.seed = seed;
  switch (t) {
    case Topology::kRingChords:
      spec.degree = 3;
      break;
    case Topology::kGnm:
      spec.edges = 3 * n;
      break;
    case Topology::kGnp:
      spec.p = std::min(1.0, 10.0 / static_cast<double>(std::max<std::size_t>(
                                 n, 1)));
      break;
    case Topology::kRgg2d:
      spec.radius = 0.0;  // BuildScenario picks the ~2 ln n degree default
      break;
    case Topology::kGrid2d:
    case Topology::kTorus2d:
      break;  // square ⌊√n⌋ sides resolved by GridDims
    case Topology::kBarabasiAlbert:
      spec.degree = 3;
      break;
  }
  return spec;
}

std::vector<CatalogueEntry> DefaultCatalogue(std::size_t n,
                                             std::uint64_t seed) {
  std::vector<CatalogueEntry> entries;
  constexpr Topology kAll[] = {
      Topology::kRingChords, Topology::kGnm,     Topology::kGnp,
      Topology::kRgg2d,      Topology::kGrid2d,  Topology::kTorus2d,
      Topology::kBarabasiAlbert};
  entries.reserve(std::size(kAll));
  for (const Topology t : kAll) {
    entries.push_back({TopologyName(t), SpecForTopology(t, n, seed)});
  }
  return entries;
}

}  // namespace gen
}  // namespace overlay
